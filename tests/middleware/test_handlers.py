"""Unit tests for Case 1/Case 2 handlers and command classification."""

import pytest

from repro.middleware.controller.dsc import DSCTaxonomy
from repro.middleware.controller.handlers import (
    Action,
    ActionHandler,
    CommandClassifier,
    EventHandler,
    HandlerError,
    IntentModelHandler,
)
from repro.middleware.controller.intent import IntentModelGenerator
from repro.middleware.controller.policy import ContextStore, Policy, PolicyEngine
from repro.middleware.controller.procedure import Procedure, ProcedureRepository
from repro.middleware.controller.stackmachine import StackMachine
from repro.middleware.synthesis.scripts import Command


class FakeBroker:
    def __init__(self):
        self.calls = []

    def call_api(self, api, **args):
        self.calls.append((api, args))
        return len(self.calls)


@pytest.fixture
def broker():
    return FakeBroker()


@pytest.fixture
def policies():
    return PolicyEngine(ContextStore({"mode": "normal"}))


class TestActionHandler:
    def test_callable_action(self, broker, policies):
        handler = ActionHandler(broker, policies)
        handler.add("act", "do.it",
                    lambda cmd, brk, ctx: brk.call_api("api.x", v=cmd.args["v"]))
        result = handler.handle(Command("do.it", args={"v": 7}))
        assert result.ok
        assert broker.calls == [("api.x", {"v": 7})]
        assert handler.executed == 1

    def test_declarative_action(self, broker, policies):
        handler = ActionHandler(broker, policies)
        handler.add("act", "do.it", [
            {"api": "api.a", "args": {"k": 1}},
            {"api": "api.b", "args_expr": {"doubled": "v * 2"}, "result": "r"},
        ])
        result = handler.handle(Command("do.it", args={"v": 5}))
        assert result.ok
        assert broker.calls == [("api.a", {"k": 1}), ("api.b", {"doubled": 10})]
        assert len(result.broker_calls) == 2  # trace recorded

    def test_pattern_matching(self, broker, policies):
        handler = ActionHandler(broker, policies)
        handler.add("wild", "stream.*", [{"api": "api.s"}])
        assert handler.can_handle(Command("stream.open"))
        assert handler.can_handle(Command("stream.close"))
        assert not handler.can_handle(Command("session.open"))

    def test_guarded_action(self, broker, policies):
        handler = ActionHandler(broker, policies)
        handler.add("guarded", "op", [{"api": "a"}], guard="mode == 'eco'")
        assert not handler.can_handle(Command("op"))
        policies.context.set("mode", "eco")
        assert handler.can_handle(Command("op"))

    def test_policy_scored_selection(self, broker, policies):
        policies.add(Policy(name="w", weights={"speed": 1.0}))
        handler = ActionHandler(broker, policies)
        handler.add("slow", "op", [{"api": "slow.api"}],
                    attributes={"speed": 1.0})
        handler.add("fast", "op", [{"api": "fast.api"}],
                    attributes={"speed": 9.0})
        handler.handle(Command("op"))
        assert broker.calls[0][0] == "fast.api"

    def test_duplicate_action_rejected(self, broker, policies):
        handler = ActionHandler(broker, policies)
        handler.add("a", "op", [])
        with pytest.raises(HandlerError, match="duplicate"):
            handler.add("a", "other", [])

    def test_no_match_raises(self, broker, policies):
        handler = ActionHandler(broker, policies)
        with pytest.raises(HandlerError, match="no action"):
            handler.handle(Command("ghost.op"))

    def test_implementation_error_captured(self, broker, policies):
        handler = ActionHandler(broker, policies)

        def boom(cmd, brk, ctx):
            raise ValueError("domain error")

        handler.add("bad", "op", boom)
        result = handler.handle(Command("op"))
        assert result.status == "error"
        assert "domain error" in result.error

    def test_table_size_estimate(self, broker, policies):
        handler = ActionHandler(broker, policies)
        handler.add("a", "x", [{"api": "1"}, {"api": "2"}])
        handler.add("b", "y", lambda c, b, x: None)
        assert handler.table_size_estimate() == 3


class TestIntentModelHandler:
    @pytest.fixture
    def world(self, broker, policies):
        taxonomy = DSCTaxonomy("t")
        taxonomy.define("dsc.op")
        repo = ProcedureRepository(taxonomy)
        p = Procedure("p", "dsc.op")
        p.main.add("BROKER", api="api.deep", args_expr={"v": "v"})
        p.main.add("RETURN", value="done")
        repo.add(p)
        generator = IntentModelGenerator(repo, policies)
        machine = StackMachine(broker)
        return IntentModelHandler(
            generator, machine, classifier_map={"do.deep": "dsc.op"}
        )

    def test_handle_generates_and_executes(self, world, broker):
        result = world.handle(Command("do.deep", args={"v": 3}))
        assert result.ok and result.value == "done"
        assert broker.calls == [("api.deep", {"v": 3})]

    def test_explicit_classifier_wins(self, world):
        assert world.classifier_for(Command("whatever", classifier="dsc.op")) == "dsc.op"

    def test_pattern_map(self, world):
        world.classifier_map["do.*"] = "dsc.op"
        assert world.classifier_for(Command("do.other")) == "dsc.op"

    def test_fallback_to_operation_name(self, world):
        assert world.classifier_for(Command("unmapped.op")) == "unmapped.op"

    def test_can_handle(self, world):
        assert world.can_handle(Command("do.deep"))
        assert not world.can_handle(Command("nothing.here"))

    def test_unresolvable_raises_handler_error(self, world):
        with pytest.raises(HandlerError):
            world.handle(Command("nothing.here"))


class TestCommandClassifier:
    def test_default_prefers_actions_when_available(self, policies):
        classifier = CommandClassifier(policies)
        case = classifier.classify(
            Command("op"), action_available=True, intent_available=True
        )
        assert case == "actions"

    def test_falls_through_to_available_side(self, policies):
        classifier = CommandClassifier(policies)
        assert classifier.classify(
            Command("op"), action_available=False, intent_available=True
        ) == "intent"
        assert classifier.classify(
            Command("op"), action_available=True, intent_available=False
        ) == "actions"

    def test_policy_forces_case(self, policies):
        policies.add(Policy(name="f", force_case="intent"))
        classifier = CommandClassifier(policies)
        case = classifier.classify(
            Command("op"), action_available=True, intent_available=True
        )
        assert case == "intent"

    def test_override_pattern(self, policies):
        classifier = CommandClassifier(
            policies, overrides={"special.*": "intent"}
        )
        assert classifier.classify(
            Command("special.op"), action_available=True, intent_available=True
        ) == "intent"
        assert classifier.classify(
            Command("plain.op"), action_available=True, intent_available=True
        ) == "actions"

    def test_nothing_available_raises(self, policies):
        classifier = CommandClassifier(policies)
        with pytest.raises(HandlerError, match="no handler"):
            classifier.classify(
                Command("op"), action_available=False, intent_available=False
            )

    def test_intent_default(self, policies):
        classifier = CommandClassifier(policies, default_case="intent")
        assert classifier.classify(
            Command("op"), action_available=True, intent_available=True
        ) == "intent"

    def test_bad_default_rejected(self, policies):
        with pytest.raises(HandlerError):
            CommandClassifier(policies, default_case="magic")


class TestEventHandler:
    def test_exact_and_wildcard_dispatch(self):
        handler = EventHandler()
        seen = []
        handler.on("a.b", lambda t, p: seen.append(("exact", t)))
        handler.on("a.*", lambda t, p: seen.append(("wild", t)))
        assert handler.dispatch("a.b", {}) == 2
        assert handler.dispatch("a.c", {}) == 1
        assert handler.dispatch("z", {}) == 0
        assert handler.handled == 2
        assert handler.unhandled == 1

    def test_payload_passed(self):
        handler = EventHandler()
        got = []
        handler.on("t", lambda t, p: got.append(p["k"]))
        handler.dispatch("t", {"k": 42})
        assert got == [42]
