"""Unit tests for session snapshots (PR 5 tentpole).

Covers the snapshot document format, capture/apply round trips, cold
restore via the loader, the checkpoint scheduler's timer-driven ticks,
and supervised warm recovery from the latest checkpoint.
"""

import pytest

from repro.domains.communication.cml import CmlBuilder, cml_metamodel
from repro.domains.communication.cvm import (
    build_middleware_model,
    default_context,
)
from repro.middleware.loader import DomainKnowledge, load_platform
from repro.middleware.snapshot import (
    CheckpointScheduler,
    SessionSnapshot,
    apply_snapshot,
    capture_snapshot,
    restore_platform,
)
from repro.modeling.serialize import SerializationError
from repro.runtime.clock import VirtualClock
from repro.runtime.component import Supervisor
from repro.runtime.external import ExternalizeError, StateExternalizer
from repro.sim.network import CommService


def fresh_session(*, clock=None):
    service = CommService("net0", op_cost=0.0)
    dsk = DomainKnowledge(dsml=cml_metamodel(), resources=[service])
    platform = load_platform(build_middleware_model(), dsk, clock=clock)
    platform.controller.context.update(default_context())
    return service, dsk, platform


def conference_model(*, extended=False):
    builder = CmlBuilder("conference")
    alice = builder.person("alice", role="initiator")
    bob = builder.person("bob")
    builder.connection("c1", [alice, bob], media=["audio"])
    if extended:
        carol = builder.person("carol")
        builder.connection("c2", [alice, carol], media=["text"])
    return builder.build()


class TestSnapshotDocument:
    def test_json_roundtrip_is_fixpoint(self):
        _service, _dsk, platform = fresh_session()
        platform.run_model(conference_model())
        snapshot = platform.checkpoint()
        platform.stop()
        text = snapshot.to_json()
        assert SessionSnapshot.from_json(text).to_json() == text

    def test_envelope_checked(self):
        with pytest.raises(SerializationError, match="format"):
            SessionSnapshot.from_dict({"format": "repro-model", "version": 1})
        with pytest.raises(SerializationError, match="version"):
            SessionSnapshot.from_dict({"format": "repro-session", "version": 99})

    def test_missing_keys_rejected(self):
        with pytest.raises(SerializationError, match="missing required key"):
            SessionSnapshot.from_dict(
                {"format": "repro-session", "version": 1, "name": "x"}
            )

    def test_layers_capture_all_four(self):
        _service, _dsk, platform = fresh_session()
        snapshot = capture_snapshot(platform)
        platform.stop()
        assert set(snapshot.layers) == {"ui", "synthesis", "controller",
                                        "broker"}
        assert snapshot.domain == "communication"

    def test_layers_satisfy_externalizer_protocol(self):
        _service, _dsk, platform = fresh_session()
        try:
            for layer in (platform.ui, platform.synthesis,
                          platform.controller, platform.broker):
                assert isinstance(layer, StateExternalizer)
        finally:
            platform.stop()


class TestColdRestore:
    def test_kill_and_restore_continues_exactly(self):
        service, dsk, platform = fresh_session()
        platform.run_model(conference_model())
        text = platform.checkpoint().to_json()
        platform.stop()  # the kill
        log_at_kill = list(service.op_log)

        restored = restore_platform(SessionSnapshot.from_json(text), dsk)
        # restore replays nothing against the external world
        assert service.op_log == log_at_kill
        restored.run_model(conference_model(extended=True))
        restored.stop()
        # only the delta (carol's session) was synthesized
        assert service.op_log[:len(log_at_kill)] == log_at_kill
        assert len(service.op_log) > len(log_at_kill)

    def test_restored_equals_uninterrupted(self):
        golden_service, _dsk, golden = fresh_session()
        golden.run_model(conference_model())
        golden.run_model(conference_model(extended=True))
        golden.stop()

        service, dsk, platform = fresh_session()
        platform.run_model(conference_model())
        text = platform.checkpoint().to_json()
        platform.stop()
        restored = restore_platform(SessionSnapshot.from_json(text), dsk)
        restored.run_model(conference_model(extended=True))
        restored.stop()
        assert service.op_log == golden_service.op_log

    def test_broker_state_travels(self):
        service, dsk, platform = fresh_session()
        platform.run_model(conference_model())
        session_keys = [k for k in platform.broker.state.keys()
                        if k.startswith("session:")]
        assert session_keys
        session_id = platform.broker.state.get(session_keys[0])
        snapshot = platform.checkpoint()
        platform.stop()
        restored = restore_platform(snapshot, dsk)
        try:
            assert restored.broker.state.get(session_keys[0]) == session_id
        finally:
            restored.stop()


class TestApplySnapshot:
    def test_reverts_in_place_mutation(self):
        _service, _dsk, platform = fresh_session()
        platform.run_model(conference_model())
        snapshot = capture_snapshot(platform)
        platform.broker.state.set("drift", "yes")
        platform.controller.context.set("network_quality", "poor")
        platform.restore_from(snapshot)
        try:
            assert "drift" not in platform.broker.state
            assert platform.controller.context.get("network_quality") == "good"
        finally:
            platform.stop()

    def test_domain_mismatch_rejected(self):
        _service, _dsk, platform = fresh_session()
        snapshot = capture_snapshot(platform)
        snapshot.domain = "microgrid"
        with pytest.raises(ExternalizeError, match="domain"):
            apply_snapshot(platform, snapshot)
        platform.stop()

    def test_stopped_platform_rejected(self):
        _service, _dsk, platform = fresh_session()
        snapshot = capture_snapshot(platform)
        platform.stop()
        with pytest.raises(ExternalizeError, match="started"):
            apply_snapshot(platform, snapshot)

    def test_ui_runtime_view_resyncs(self):
        _service, _dsk, platform = fresh_session()
        platform.run_model(conference_model())
        snapshot = capture_snapshot(platform)
        dispatches = platform.synthesis.dispatcher.dispatches
        platform.ui._runtime_view = None  # a crashed UI lost its view
        platform.restore_from(snapshot)
        try:
            assert platform.ui.runtime_view is not None
            # restore re-announces the model but is not a new dispatch
            assert platform.synthesis.dispatcher.dispatches == dispatches
        finally:
            platform.stop()


class TestDispatcherInstall:
    def test_install_notifies_without_counting(self):
        from repro.middleware.synthesis.dispatcher import Dispatcher

        dispatcher = Dispatcher()
        seen = []
        dispatcher.on_model_update(seen.append)
        model = conference_model()
        dispatcher.install(model, dispatches=7)
        assert seen == [model]
        assert dispatcher.dispatches == 7
        assert dispatcher.runtime_model is model

    def test_install_none_skips_notification(self):
        from repro.middleware.synthesis.dispatcher import Dispatcher

        dispatcher = Dispatcher()
        seen = []
        dispatcher.on_model_update(seen.append)
        dispatcher.install(None)
        assert seen == []
        assert dispatcher.runtime_model is None


class TestCheckpointScheduler:
    def test_virtual_clock_ticks_self_schedule(self):
        clock = VirtualClock()
        _service, _dsk, platform = fresh_session(clock=clock)
        scheduler = CheckpointScheduler(platform, interval=5.0, clock=clock)
        scheduler.start()
        clock.advance(5.0)
        clock.advance(5.0)
        assert scheduler.checkpoints_taken == 2
        assert scheduler.last_snapshot is not None
        scheduler.stop()
        clock.advance(5.0)
        assert scheduler.checkpoints_taken == 2
        platform.stop()

    def test_bad_interval_rejected(self):
        _service, _dsk, platform = fresh_session()
        with pytest.raises(ValueError, match="interval"):
            CheckpointScheduler(platform, interval=0.0)
        platform.stop()

    def test_manual_tick_and_callback(self):
        _service, _dsk, platform = fresh_session()
        seen = []
        scheduler = CheckpointScheduler(
            platform, interval=1.0, on_checkpoint=seen.append
        )
        snapshot = scheduler.tick()
        assert seen == [snapshot]
        assert scheduler.last_snapshot is snapshot
        platform.stop()

    def test_supervised_restart_resumes_from_checkpoint(self):
        clock = VirtualClock()
        _service, _dsk, platform = fresh_session(clock=clock)
        platform.run_model(conference_model())
        platform.broker.state.set("k", 1)

        scheduler = CheckpointScheduler(platform, interval=60.0, clock=clock)
        scheduler.tick()
        supervisor = Supervisor(clock=clock)
        supervisor.watch(platform.broker)
        scheduler.attach(supervisor)

        platform.broker.state.set("k", 2)  # post-checkpoint drift
        supervisor.report_crash(platform.broker.name, RuntimeError("boom"))
        clock.advance(supervisor.base_delay)

        assert platform.broker.running
        assert scheduler.recoveries == 1
        # the session resumed from its checkpoint, not from the drifted
        # (or cold) state
        assert platform.broker.state.get("k") == 1
        assert platform.synthesis.dispatcher.runtime_model is not None
        platform.stop()

    def test_recovery_failure_never_crashes_restart(self):
        clock = VirtualClock()
        _service, _dsk, platform = fresh_session(clock=clock)
        supervisor = Supervisor(clock=clock)
        supervisor.watch(platform.broker)

        def explode(_component):
            raise RuntimeError("recovery gone wrong")

        supervisor.on_restarted = explode
        supervisor.report_crash(platform.broker.name, RuntimeError("boom"))
        clock.advance(supervisor.base_delay)
        # restart still counted; the recovery error was contained
        assert platform.broker.running
        assert supervisor.restarts == 1
        platform.stop()
