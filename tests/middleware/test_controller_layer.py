"""Unit tests for the Controller layer façade."""

import pytest

from repro.middleware.controller.handlers import Action
from repro.middleware.controller.layer import ControllerLayer
from repro.middleware.controller.procedure import Procedure
from repro.middleware.synthesis.scripts import Command, ControlScript
from repro.runtime.events import Event


class FakeBroker:
    def __init__(self):
        self.calls = []

    def call_api(self, api, **args):
        self.calls.append((api, args))
        if api == "fail.api":
            raise RuntimeError("backend down")
        return api


@pytest.fixture
def broker():
    return FakeBroker()


@pytest.fixture
def controller(broker) -> ControllerLayer:
    layer = ControllerLayer("ctl")
    layer.taxonomy.define("op")
    layer.taxonomy.define("op.deep", parent="op")
    deep = Procedure("deep", "op.deep")
    deep.main.add("BROKER", api="deep.api", args_expr={"v": "v"})
    deep.main.add("RETURN", value="deep-done")
    layer.repository.add(deep)
    layer.map_operation("do.deep", "op.deep")
    layer.configure({})
    layer.wire("broker", broker)
    layer.start()
    layer.install_action(
        Action(name="fast", pattern="do.fast",
               implementation=[{"api": "fast.api", "args_expr": {"v": "v"}}])
    )
    layer.install_action(
        Action(name="broken", pattern="do.broken",
               implementation=[{"api": "fail.api"}])
    )
    return layer


class TestCommandExecution:
    def test_case1_action_path(self, controller, broker):
        outcome = controller.execute_command(Command("do.fast", args={"v": 1}))
        assert outcome.ok and outcome.case == "actions"
        assert broker.calls == [("fast.api", {"v": 1})]

    def test_case2_intent_path(self, controller, broker):
        outcome = controller.execute_command(Command("do.deep", args={"v": 2}))
        assert outcome.ok and outcome.case == "intent"
        assert outcome.result.value == "deep-done"
        assert broker.calls == [("deep.api", {"v": 2})]

    def test_guard_skips_command(self, controller, broker):
        outcome = controller.execute_command(
            Command("do.fast", args={"v": 1}, guard="v > 10")
        )
        assert outcome.case == "skipped"
        assert outcome.ok
        assert broker.calls == []

    def test_guard_allows_command(self, controller, broker):
        controller.execute_command(
            Command("do.fast", args={"v": 11}, guard="v > 10")
        )
        assert len(broker.calls) == 1

    def test_failed_action_reported(self, controller):
        failures = []
        controller.events.on("controller.command_failed",
                             lambda t, p: failures.append(p))
        script = ControlScript()
        script.add(Command("do.broken"))
        outcome = controller.submit_script(script)
        assert not outcome.ok
        assert len(outcome.failures()) == 1
        assert failures and "backend down" in failures[0]["error"]

    def test_requires_running(self, broker):
        layer = ControllerLayer("x").configure({})
        layer.wire("broker", broker)
        with pytest.raises(Exception):
            layer.execute_command(Command("op"))


class TestScripts:
    def test_script_executes_in_order(self, controller, broker):
        script = ControlScript(name="s")
        script.add(Command("do.fast", args={"v": 1}))
        script.add(Command("do.deep", args={"v": 2}))
        outcome = controller.submit_script(script)
        assert outcome.ok
        assert [c[0] for c in broker.calls] == ["fast.api", "deep.api"]
        assert controller.scripts_executed == 1
        assert controller.commands_executed == 2

    def test_broker_trace(self, controller):
        script = ControlScript()
        script.add(Command("do.fast", args={"v": 9}))
        outcome = controller.submit_script(script)
        assert outcome.broker_trace() == ["fast.api(v=9)"]


class TestSignals:
    def test_event_signal_routed_to_event_handler(self, controller):
        seen = []
        controller.events.on("resource.*", lambda t, p: seen.append(t))
        controller.receive_signal(
            Event(topic="resource.net0.failed", payload={"session": "s1"})
        )
        assert seen == ["resource.net0.failed"]

    def test_call_signal_with_script(self, controller, broker):
        from repro.runtime.events import Call

        script = ControlScript()
        script.add(Command("do.fast", args={"v": 3}))
        controller.receive_signal(Call(topic="script", payload={"script": script}))
        assert broker.calls == [("fast.api", {"v": 3})]


class TestContextPropagation:
    def test_context_change_reaches_stack_machine(self, controller, broker):
        check = Procedure("check", "op")
        check.main.add("RETURN", expr="env_flag")
        controller.repository.add(check)
        controller.map_operation("do.check", "op")
        controller.context.set("env_flag", "ready")
        outcome = controller.execute_command(Command("do.check"))
        assert outcome.result.value == "ready"

    def test_stats(self, controller):
        controller.execute_command(Command("do.fast", args={"v": 1}))
        stats = controller.stats()
        assert stats["commands_executed"] == 1
        assert stats["actions_executed"] == 1


class TestCausalChains:
    def test_script_call_roots_command_trace_nodes(self, controller):
        """A script arriving as a Call signal roots a causal chain; the
        commands executed for it are recorded as its children."""
        from repro.runtime.events import Call
        from repro.runtime.trace import TraceRecorder

        script = ControlScript(name="traced")
        script.add(Command("do.fast", args={"v": 1}))
        script.add(Command("do.fast", args={"v": 2}))
        with TraceRecorder() as recorder:
            call = Call(
                topic="synthesis.script",
                payload={"script": script},
                origin="synthesis",
            )
            controller.receive_signal(call)
        chain = recorder.chains()[call.trace_id]
        topics = [r.topic for r in chain]
        assert topics[0] == "synthesis.script"
        assert topics.count("controller.command.do.fast") == 2
        for record in chain[1:]:
            assert record.parent_seq == call.seq
        assert controller.scripts_executed == 1

    def test_untraced_runs_create_no_command_signals(self, controller):
        """Without a trace hook the per-command signal nodes are skipped
        (hot path stays allocation-free)."""
        from repro.runtime.events import Call
        from repro.runtime.trace import TraceRecorder

        script = ControlScript(name="untraced")
        script.add(Command("do.fast", args={"v": 1}))
        call = Call(topic="synthesis.script", payload={"script": script})
        controller.receive_signal(call)  # no recorder installed
        with TraceRecorder() as recorder:
            pass
        assert len(recorder) == 0
        assert controller.scripts_executed == 1
