"""Unit tests for the Controller's stack-machine execution engine."""

import pytest

from repro.middleware.controller.intent import IntentModel, IntentNode
from repro.middleware.controller.procedure import Procedure
from repro.middleware.controller.stackmachine import (
    ExecutionError,
    StackMachine,
)


class FakeBroker:
    """Records API calls; returns canned or echoed results."""

    def __init__(self, results=None):
        self.calls = []
        self.results = dict(results or {})

    def call_api(self, api, **args):
        self.calls.append((api, args))
        if api in self.results:
            result = self.results[api]
            return result(args) if callable(result) else result
        return f"result:{api}"


def leaf_model(procedure: Procedure) -> IntentModel:
    return IntentModel(classifier=procedure.classifier,
                       root=IntentNode(procedure=procedure))


class TestOpcodes:
    def test_set_and_return(self):
        p = Procedure("p", "op")
        p.main.add("SET", var="x", expr="a + 1")
        p.main.add("RETURN", expr="x * 2")
        machine = StackMachine(FakeBroker())
        result = machine.execute(leaf_model(p), {"a": 4})
        assert result.ok
        assert result.value == 10

    def test_set_literal_value(self):
        p = Procedure("p", "op")
        p.main.add("SET", var="x", value="hello")
        p.main.add("RETURN", expr="x")
        result = StackMachine(FakeBroker()).execute(leaf_model(p))
        assert result.value == "hello"

    def test_broker_call_with_expr_args(self):
        p = Procedure("p", "op")
        p.main.add("BROKER", api="svc.do", args={"fixed": 1},
                   args_expr={"dynamic": "n * 2"}, result="out")
        p.main.add("RETURN", expr="out")
        broker = FakeBroker({"svc.do": 42})
        result = StackMachine(broker).execute(leaf_model(p), {"n": 3})
        assert result.value == 42
        assert broker.calls == [("svc.do", {"fixed": 1, "dynamic": 6})]
        assert result.call_trace() == ["svc.do(dynamic=6, fixed=1)"]

    def test_invoke_pushes_and_pops(self):
        child = Procedure("child", "dep")
        child.main.add("RETURN", expr="inp + 1")
        parent = Procedure("parent", "op", dependencies=["dep"])
        parent.main.add("INVOKE", dependency="dep",
                        args_expr={"inp": "start"}, result="got")
        parent.main.add("RETURN", expr="got * 10")
        model = IntentModel(
            classifier="op",
            root=IntentNode(
                procedure=parent,
                children={"dep": IntentNode(procedure=child)},
            ),
        )
        result = StackMachine(FakeBroker()).execute(model, {"start": 4})
        assert result.value == 50

    def test_emit_collects_and_forwards(self):
        p = Procedure("p", "op")
        p.main.add("EMIT", topic="x.y", args={"k": 1})
        emitted = []
        machine = StackMachine(
            FakeBroker(), emit=lambda t, pl: emitted.append((t, pl))
        )
        result = machine.execute(leaf_model(p))
        assert result.events == [("x.y", {"k": 1})]
        assert emitted == [("x.y", {"k": 1})]

    def test_guard_pass_and_fail(self):
        p = Procedure("p", "op")
        p.main.add("GUARD", condition="n > 0")
        p.main.add("RETURN", value="done")
        machine = StackMachine(FakeBroker())
        ok = machine.execute(leaf_model(p), {"n": 1})
        assert ok.ok and ok.value == "done"
        failed = machine.execute(leaf_model(p), {"n": -1})
        assert failed.status == "guard_failed"
        assert "guard" in failed.error

    def test_noop_charges_work(self):
        charges = []
        p = Procedure("p", "op")
        p.main.add("NOOP", cost=2.5)
        machine = StackMachine(FakeBroker(), work=charges.append)
        machine.execute(leaf_model(p))
        assert charges == [2.5]

    def test_implicit_return_at_end_of_unit(self):
        p = Procedure("p", "op")
        p.main.add("SET", var="x", value=1)
        result = StackMachine(FakeBroker()).execute(leaf_model(p))
        assert result.ok
        assert result.value is None


class TestErrors:
    def test_missing_operands(self):
        for opcode, operand in (
            ("SET", "var"), ("BROKER", "api"), ("INVOKE", "dependency"),
            ("EMIT", "topic"), ("GUARD", "condition"),
        ):
            p = Procedure("p", "op")
            p.main.add(opcode)
            result = StackMachine(FakeBroker()).execute(leaf_model(p))
            assert result.status == "error"
            assert operand in result.error

    def test_invoke_unresolved_dependency(self):
        p = Procedure("p", "op", dependencies=["dep"])
        p.main.add("INVOKE", dependency="dep")
        result = StackMachine(FakeBroker()).execute(leaf_model(p))
        assert result.status == "error"
        assert "no resolved dependency" in result.error

    def test_missing_unit(self):
        p = Procedure("p", "op")
        with pytest.raises(ExecutionError, match="no unit"):
            StackMachine(FakeBroker()).execute(leaf_model(p), unit="ghost")

    def test_instruction_budget(self):
        # An EU that never terminates... cannot exist (no loops), but a
        # deep invoke chain bounded by budget is equivalent; emulate by
        # tiny budget on a long unit.
        p = Procedure("p", "op")
        for _ in range(10):
            p.main.add("NOOP", cost=0)
        machine = StackMachine(FakeBroker(), max_instructions=5)
        result = machine.execute(leaf_model(p))
        assert result.status == "error"
        assert "budget" in result.error

    def test_expression_error_surfaces(self):
        p = Procedure("p", "op")
        p.main.add("SET", var="x", expr="1 / 0")
        result = StackMachine(FakeBroker()).execute(leaf_model(p))
        assert result.status == "error"


class TestContext:
    def test_context_visible_to_expressions(self):
        p = Procedure("p", "op")
        p.main.add("RETURN", expr="mode")
        machine = StackMachine(FakeBroker(), context={"mode": "eco"})
        assert machine.execute(leaf_model(p)).value == "eco"

    def test_locals_shadow_context(self):
        p = Procedure("p", "op")
        p.main.add("SET", var="mode", value="local")
        p.main.add("RETURN", expr="mode")
        machine = StackMachine(FakeBroker(), context={"mode": "global"})
        assert machine.execute(leaf_model(p)).value == "local"

    def test_ctx_alias(self):
        p = Procedure("p", "op")
        p.main.add("RETURN", expr="ctx.get('missing', 'fallback')")
        machine = StackMachine(FakeBroker(), context={})
        assert machine.execute(leaf_model(p)).value == "fallback"

    def test_alternate_unit(self):
        p = Procedure("p", "op")
        p.main.add("RETURN", value="main")
        p.unit("recover").add("RETURN", value="recovered")
        machine = StackMachine(FakeBroker())
        assert machine.execute(leaf_model(p), unit="recover").value == "recovered"
