"""Unit tests for control scripts and commands."""

import pytest

from repro.middleware.synthesis.scripts import (
    Command,
    ControlScript,
    ScriptError,
    script_from_dict,
    script_from_json,
    script_metamodel,
    script_to_dict,
    script_to_json,
)


class TestCommand:
    def test_construction(self):
        cmd = Command("session.open", args={"id": "s1"}, target="s1")
        assert cmd.category == "session"
        assert str(cmd).startswith("session.open(")

    def test_empty_operation_rejected(self):
        with pytest.raises(ScriptError):
            Command("")

    def test_with_args(self):
        cmd = Command("op", args={"a": 1})
        enriched = cmd.with_args(b=2)
        assert dict(enriched.args) == {"a": 1, "b": 2}
        assert dict(cmd.args) == {"a": 1}

    def test_commands_are_immutable(self):
        cmd = Command("op")
        with pytest.raises(AttributeError):
            cmd.operation = "other"


class TestControlScript:
    def test_builder_style(self):
        script = ControlScript(name="s")
        script.command("a.x", k=1).command("b.y")
        assert script.operations() == ["a.x", "b.y"]
        assert len(script) == 2
        assert not script.empty

    def test_unique_ids(self):
        assert ControlScript().script_id != ControlScript().script_id

    def test_iteration(self):
        script = ControlScript()
        script.command("one").command("two")
        assert [c.operation for c in script] == ["one", "two"]


class TestSerialization:
    @pytest.fixture
    def script(self) -> ControlScript:
        script = ControlScript(name="demo", source_model="m1")
        script.add(Command("a.b", args={"x": 1}, classifier="dsc.a",
                           target="t1", guard="x > 0"))
        script.command("c.d")
        script.metadata["origin"] = "test"
        return script

    def test_dict_roundtrip(self, script):
        restored = script_from_dict(script_to_dict(script))
        assert restored.script_id == script.script_id
        assert restored.operations() == script.operations()
        first = restored.commands[0]
        assert first.classifier == "dsc.a"
        assert first.guard == "x > 0"
        assert dict(first.args) == {"x": 1}
        assert restored.metadata == {"origin": "test"}

    def test_json_roundtrip(self, script):
        restored = script_from_json(script_to_json(script))
        assert restored.operations() == script.operations()

    def test_malformed_document(self):
        with pytest.raises(ScriptError):
            script_from_dict({"commands": [{"args": {}}]})  # no operation

    def test_bad_json(self):
        with pytest.raises(ScriptError):
            script_from_json("nope{")


class TestScriptMetamodel:
    def test_structure(self):
        mm = script_metamodel()
        assert mm.find_class("Script") is not None
        command = mm.require_class("ScriptCommand")
        assert command.find_feature("operation").required

    def test_singleton(self):
        assert script_metamodel() is script_metamodel()
