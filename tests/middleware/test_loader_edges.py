"""Edge-case tests for the platform loader and reflection surface."""

import pytest

from repro.middleware.broker.actions import BrokerAction
from repro.middleware.controller.handlers import Action
from repro.middleware.loader import DomainKnowledge, LoaderError, load_platform
from repro.middleware.metamodel import dumps_json_attr
from repro.middleware.model import MiddlewareModelBuilder
from repro.middleware.platform import PlatformError
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model


@pytest.fixture
def dsml() -> Metamodel:
    mm = Metamodel("edgeml")
    thing = mm.new_class("Thing")
    thing.attribute("name", "string", required=True)
    return mm.resolve()


def minimal_model(**kwargs) -> Model:
    builder = MiddlewareModelBuilder("edge-mw", "edge")
    builder.ui_layer()
    builder.synthesis_layer()
    builder.controller_layer()
    builder.broker_layer()
    return builder.build()


class TestLoaderErrors:
    def test_unresolvable_dsc_parent(self, dsml):
        model = minimal_model()
        controller = model.objects_by_class("ControllerLayerDef")[0]
        controller.classifiers.append(
            model.create("DSCDef", name="orphan", parent="ghost")
        )
        with pytest.raises(LoaderError, match="unresolvable DSC parents"):
            load_platform(model, DomainKnowledge(dsml=dsml))

    def test_event_binding_to_unknown_action(self, dsml):
        model = minimal_model()
        broker = model.objects_by_class("BrokerLayerDef")[0]
        broker.eventBindings.append(
            model.create("EventBindingDef", topicPattern="resource.*",
                         action="ghost")
        )
        with pytest.raises(LoaderError, match="unknown"):
            load_platform(model, DomainKnowledge(dsml=dsml))

    def test_empty_model_rejected(self, dsml):
        from repro.middleware.metamodel import middleware_metamodel

        with pytest.raises(LoaderError, match="no root"):
            load_platform(
                Model(middleware_metamodel(), name="empty"),
                DomainKnowledge(dsml=dsml),
            )

    def test_forward_declared_dsc_parents_resolve(self, dsml):
        # child declared before parent: the loader's two-pass handles it
        model = minimal_model()
        controller = model.objects_by_class("ControllerLayerDef")[0]
        controller.classifiers.append(
            model.create("DSCDef", name="child", parent="base")
        )
        controller.classifiers.append(model.create("DSCDef", name="base"))
        platform = load_platform(model, DomainKnowledge(dsml=dsml))
        assert platform.controller.taxonomy.matches("child", "base")
        platform.stop()


class TestDskCallableInstallation:
    def test_python_actions_from_dsk(self, dsml):
        hits = []
        controller_action = Action(
            name="py-act", pattern="do.it",
            implementation=lambda cmd, broker, ctx: broker.call_api(
                "hw.go", n=cmd.args["n"]
            ),
        )
        broker_action = BrokerAction(
            name="py-broker", pattern="hw.go",
            implementation=lambda ctx: hits.append(ctx.args["n"]),
        )
        platform = load_platform(
            minimal_model(),
            DomainKnowledge(
                dsml=dsml,
                controller_actions=[controller_action],
                broker_actions=[broker_action],
            ),
        )
        from repro.middleware.synthesis.scripts import Command

        outcome = platform.controller.execute_command(
            Command("do.it", args={"n": 7})
        )
        assert outcome.ok
        assert hits == [7]
        platform.stop()

    def test_event_hooks_installed(self, dsml):
        seen = []
        platform = load_platform(
            minimal_model(),
            DomainKnowledge(
                dsml=dsml,
                event_hooks=[("controller.*", lambda t, p: seen.append(t))],
            ),
        )
        platform.synthesis.handle_event("controller.custom", {})
        assert seen == ["controller.custom"]
        platform.stop()

    def test_negotiator_installed(self, dsml):
        def negotiator(model):
            model.name = "negotiated"
            return model

        platform = load_platform(
            minimal_model(), DomainKnowledge(dsml=dsml, negotiator=negotiator)
        )
        result = platform.run_model(Model(dsml, name="raw"))
        assert result.accepted_model.name == "negotiated"
        platform.stop()


class TestReflectionAdditions:
    @pytest.fixture
    def platform(self, dsml):
        from repro.middleware.broker.resource import CallableResource

        platform = load_platform(
            minimal_model(),
            DomainKnowledge(
                dsml=dsml,
                resources=[CallableResource(
                    "hw", {"poke": lambda: "poked"}
                )],
            ),
        )
        yield platform
        platform.stop()

    def test_add_broker_action(self, platform):
        edited = platform.reflect()
        broker_def = edited.objects_by_class("BrokerLayerDef")[0]
        action = edited.create(
            "BrokerActionDef", name="rt-action", pattern="hw.poke"
        )
        step = edited.create("StepDef", resource="hw", operation="poke")
        action.steps.append(step)
        broker_def.actions.append(action)
        applied = platform.apply_reflection(edited)
        assert applied == ["added BrokerActionDef rt-action"]
        assert platform.broker.call_api("hw.poke") == "poked"

    def test_add_symptom_and_plan(self, platform):
        edited = platform.reflect()
        broker_def = edited.objects_by_class("BrokerLayerDef")[0]
        broker_def.symptoms.append(
            edited.create("SymptomDef", name="rt-symptom",
                          condition="load > 1", requestKind="cool")
        )
        plan = edited.create("ChangePlanDef", name="rt-plan",
                             requestKind="cool")
        plan.steps.append(
            edited.create("StepDef", setKey="cooled", expr="True")
        )
        broker_def.plans.append(plan)
        applied = platform.apply_reflection(edited)
        assert sorted(applied) == [
            "added ChangePlanDef rt-plan", "added SymptomDef rt-symptom",
        ]
        platform.broker.state.set("load", 2)
        assert platform.broker.state.get("cooled") is True

    def test_add_dsc_at_runtime(self, platform):
        edited = platform.reflect()
        controller_def = edited.objects_by_class("ControllerLayerDef")[0]
        controller_def.classifiers.append(
            edited.create("DSCDef", name="rt.dsc")
        )
        platform.apply_reflection(edited)
        assert "rt.dsc" in platform.controller.taxonomy

    def test_removal_rejected(self, platform):
        edited = platform.reflect()
        controller_def = edited.objects_by_class("ControllerLayerDef")[0]
        controller_def.classifiers.append(
            edited.create("DSCDef", name="temp")
        )
        platform.apply_reflection(edited)
        # now attempt to remove it reflectively
        shrunk = platform.reflect()
        controller_def = shrunk.objects_by_class("ControllerLayerDef")[0]
        for dsc in list(controller_def.classifiers):
            if dsc.name == "temp":
                controller_def.classifiers.remove(dsc)
        with pytest.raises(PlatformError, match="unsupported"):
            platform.apply_reflection(shrunk)

    def test_reflection_of_unsupported_class(self, platform):
        edited = platform.reflect()
        synthesis_def = edited.objects_by_class("SynthesisLayerDef")[0]
        synthesis_def.rules.append(
            edited.create("RuleDef", className="Thing")
        )
        with pytest.raises(PlatformError, match="unsupported"):
            platform.apply_reflection(edited)
