"""Tests for the UI layer (ModelWorkspace), including woven submission."""

import pytest

from repro.middleware.synthesis.engine import SynthesisEngine
from repro.middleware.synthesis.interpreter import EntityRule
from repro.middleware.ui import ModelWorkspace, UIError
from repro.modeling.constraints import ConstraintRegistry
from repro.modeling.lts import LTS
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model
from repro.modeling.serialize import model_to_json


@pytest.fixture
def dsml() -> Metamodel:
    mm = Metamodel("noteml")
    note = mm.new_class("Note")
    note.attribute("name", "string", required=True)
    note.attribute("text", "string")
    note.attribute("tags", "string", many=True)
    return mm.resolve()


@pytest.fixture
def workspace(dsml) -> ModelWorkspace:
    lts = LTS("note")
    lts.add_transition(
        "initial", "add", "posted",
        actions=({"operation": "note.post",
                  "args_expr": {"id": "obj.id"}},),
    )
    lts.add_transition("posted", "set:text", "posted")
    lts.add_transition("posted", "remove", "initial")
    synthesis = SynthesisEngine(metamodel=dsml)
    synthesis.add_rule(EntityRule("Note", lts))
    synthesis.configure({})
    synthesis.start()
    constraints = ConstraintRegistry()
    constraints.invariant("short", "Note", "len(self.text) < 100")
    ui = ModelWorkspace(metamodel=dsml, constraints=constraints)
    ui.configure({})
    ui.wire("synthesis", synthesis)
    ui.start()
    return ui


class TestModelManagement:
    def test_new_model_and_lookup(self, workspace):
        model = workspace.new_model("draft")
        assert workspace.get_model("draft") is model
        assert workspace.model_names() == ["draft"]
        with pytest.raises(UIError, match="already has"):
            workspace.new_model("draft")

    def test_unknown_model(self, workspace):
        with pytest.raises(UIError, match="no model"):
            workspace.get_model("ghost")

    def test_put_model_rejects_foreign_metamodel(self, workspace):
        other = Metamodel("other")
        other.new_class("X")
        other.resolve()
        with pytest.raises(UIError, match="conforms to"):
            workspace.put_model(Model(other, name="m"))

    def test_checkout_is_a_copy(self, workspace, dsml):
        model = workspace.new_model("m")
        model.create_root("Note", name="n", text="hello")
        copy = workspace.checkout("m")
        copy.roots[0].text = "edited"
        assert model.roots[0].text == "hello"

    def test_checkout_runtime_requires_submission(self, workspace):
        with pytest.raises(UIError, match="no runtime model"):
            workspace.checkout()

    def test_runtime_view_after_submit(self, workspace):
        model = workspace.new_model("m")
        model.create_root("Note", name="n", text="x")
        workspace.submit("m")
        assert workspace.runtime_view is not None
        assert workspace.checkout().roots[0].name == "n"


class TestValidationGate:
    def test_invalid_model_rejected(self, workspace):
        model = workspace.new_model("m")
        model.create_root("Note", name="n", text="y" * 200)
        with pytest.raises(ValueError, match="validation failed"):
            workspace.submit("m")

    def test_submission_counts(self, workspace):
        model = workspace.new_model("m")
        model.create_root("Note", name="n", text="ok")
        workspace.submit("m")
        assert workspace.submissions == 1


class TestParsing:
    def test_default_parser_is_json(self, workspace, dsml):
        model = Model(dsml, name="j")
        model.create_root("Note", name="n", text="t")
        parsed = workspace.parse(model_to_json(model), name="fromjson")
        assert parsed.roots[0].text == "t"
        assert "fromjson" in workspace.model_names()

    def test_custom_parser(self, workspace, dsml):
        def parser(text: str) -> Model:
            model = Model(dsml, name="custom")
            for line in text.splitlines():
                if line.strip():
                    model.create_root("Note", name=line.strip())
            return model

        workspace.set_parser(parser)
        parsed = workspace.parse("one\ntwo\n")
        assert len(parsed.roots) == 2


class TestWovenSubmission:
    def test_submit_woven(self, workspace, dsml):
        base = Model(dsml, name="base")
        base.create_root("Note", name="shared", text="v1", tags=["a"])
        aspect = Model(dsml, name="aspect")
        aspect.create_root("Note", name="shared", tags=["b"])
        aspect.create_root("Note", name="extra", text="new")
        weave, synthesis_result = workspace.submit_woven(base, aspect)
        assert weave.merged == 1 and weave.added == 1
        woven = weave.model
        shared = [n for n in woven.roots if n.name == "shared"][0]
        assert shared.tags == ["a", "b"]
        # both notes synthesized into commands
        assert synthesis_result.script.operations() == ["note.post"] * 2

    def test_submit_woven_by_name(self, workspace, dsml):
        base = workspace.new_model("base")
        base.create_root("Note", name="n", text="x")
        aspect = workspace.new_model("aspect")
        aspect.create_root("Note", name="m", text="y")
        weave, result = workspace.submit_woven("base", "aspect")
        assert len(result.script) == 2

    def test_strict_weave_conflict_propagates(self, workspace, dsml):
        from repro.modeling.weave import WeaveConflict

        base = Model(dsml, name="b")
        base.create_root("Note", name="n", text="one")
        aspect = Model(dsml, name="a")
        aspect.create_root("Note", name="n", text="two")
        with pytest.raises(WeaveConflict):
            workspace.submit_woven(base, aspect, strict=True)
