"""Disk-cached AOT modules keyed by DSK_HASH (cluster cold-start path)."""

import pytest

from repro.domains.communication.cml import cml_metamodel
from repro.domains.communication.cvm import (
    build_middleware_model,
    default_context,
)
from repro.middleware.loader import DomainKnowledge, load_platform
from repro.middleware.snapshot import restore_platform
from repro.middleware.synthesis.aot import build_program
from repro.modeling.aotgen import (
    cache_path,
    dsk_fingerprint,
    dsk_hash,
    read_cached_source,
    write_cached_source,
)
from repro.sim.network import CommService


def _comm_platform():
    service = CommService("net0", op_cost=0.0)
    dsk = DomainKnowledge(dsml=cml_metamodel(), resources=[service])
    platform = load_platform(build_middleware_model(), dsk)
    platform.controller.context.update(default_context())
    return service, dsk, platform


def _dsk_parts(platform):
    return {
        "rules": platform.synthesis.interpreter._rules,
        "actions": list(platform.broker.calls._actions),
        "dsml": platform.dsml,
    }


class TestBuildProgramCache:
    def test_miss_generates_and_writes(self, tmp_path):
        _service, _dsk, platform = _comm_platform()
        try:
            parts = _dsk_parts(platform)
            digest = dsk_hash(dsk_fingerprint(**parts))
            assert read_cached_source(tmp_path, digest) is None

            program = build_program(**parts, cache_dir=str(tmp_path))
            assert not program.from_cache
            cached = read_cached_source(tmp_path, digest)
            assert cached == program.source
            assert cache_path(tmp_path, digest).name == f"aot-{digest}.py"
        finally:
            platform.stop()

    def test_hit_loads_identical_program(self, tmp_path):
        _service, _dsk, platform = _comm_platform()
        try:
            parts = _dsk_parts(platform)
            cold = build_program(**parts, cache_dir=str(tmp_path))
            warm = build_program(**parts, cache_dir=str(tmp_path))
            assert not cold.from_cache
            assert warm.from_cache
            assert warm.source == cold.source
            assert warm.dsk_hash == cold.dsk_hash
            assert warm.broker_calls.keys() == cold.broker_calls.keys()
        finally:
            platform.stop()

    def test_corrupt_entry_regenerated_and_overwritten(self, tmp_path):
        _service, _dsk, platform = _comm_platform()
        try:
            parts = _dsk_parts(platform)
            digest = dsk_hash(dsk_fingerprint(**parts))
            write_cached_source(tmp_path, digest, "ABI = 'garbage'\n")

            program = build_program(**parts, cache_dir=str(tmp_path))
            # Loader validation rejected the entry: regenerated live...
            assert not program.from_cache
            # ...and the bad entry was overwritten with the good module.
            assert read_cached_source(tmp_path, digest) == program.source
            assert build_program(**parts, cache_dir=str(tmp_path)).from_cache
        finally:
            platform.stop()

    def test_tampered_hash_is_a_miss(self, tmp_path):
        _service, _dsk, platform = _comm_platform()
        try:
            parts = _dsk_parts(platform)
            digest = dsk_hash(dsk_fingerprint(**parts))
            good = build_program(**parts, cache_dir=str(tmp_path))
            tampered = good.source.replace(digest, "f" * 64)
            assert tampered != good.source
            write_cached_source(tmp_path, digest, tampered)
            assert not build_program(
                **parts, cache_dir=str(tmp_path)
            ).from_cache
        finally:
            platform.stop()


class TestPlatformCacheWiring:
    def test_enable_aot_populates_and_reuses_cache(self, tmp_path):
        _service, _dsk, cold_platform = _comm_platform()
        try:
            assert not cold_platform.enable_aot(
                cache_dir=str(tmp_path)
            ).from_cache
        finally:
            cold_platform.stop()

        _service, _dsk, warm_platform = _comm_platform()
        try:
            assert warm_platform.enable_aot(
                cache_dir=str(tmp_path)
            ).from_cache
        finally:
            warm_platform.stop()

    def test_load_platform_aot_cache_dir(self, tmp_path):
        service, dsk, seed = _comm_platform()
        seed.enable_aot(cache_dir=str(tmp_path))
        seed.stop()

        service = CommService("net0", op_cost=0.0)
        dsk = DomainKnowledge(dsml=cml_metamodel(), resources=[service])
        platform = load_platform(
            build_middleware_model(), dsk,
            aot=True, aot_cache_dir=str(tmp_path),
        )
        try:
            assert platform.synthesis.interpreter._aot is not None
            assert platform.synthesis.interpreter._aot.from_cache
        finally:
            platform.stop()

    def test_restore_platform_aot_cache_dir(self, tmp_path):
        service, dsk, platform = _comm_platform()
        platform.enable_aot(cache_dir=str(tmp_path))
        platform.broker.call_api("ncb.open_session", connection="c1")
        snapshot = platform.checkpoint()
        platform.stop()

        restored = restore_platform(
            snapshot, dsk, aot=True, aot_cache_dir=str(tmp_path)
        )
        try:
            assert restored.synthesis.interpreter._aot.from_cache
            assert restored.broker.state.get("session:c1")
        finally:
            restored.stop()


class TestAotGenCli:
    def test_cache_dir_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "aot-cache"
        out = tmp_path / "mod.py"
        argv = ["aot-gen", "--domain", "communication",
                "--cache-dir", str(cache), "--output", str(out)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cached as aot-" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hit: aot-" in second
        assert out.read_text(encoding="utf-8").startswith('"""')
