"""Tier-3 AOT synthesis: behavioural invisibility and lifecycle.

The AOT tier (PR 8) compiles a loaded DSK into a real Python module —
flat dispatch tables, per-API call functions, slot-indexed feature
reads.  These tests pin the contract inherited from the compiled tier
(PR 3): Tier-3 may only change *cost*, never behaviour.  Coverage:

* property: random multi-revision editing sessions emit byte-identical
  control scripts on Tier-2 and Tier-3;
* full-stack op_log equality across all four shipped domains;
* the runtime-edit lifecycle: a DSK edit drops the installed program
  (that cycle falls back to Tier-2), the next completed cycle
  regenerates it, and the service trace never diverges;
* generation determinism and DSK-hash validation in the loader;
* the broker fast path: parity with the action-table path, including
  error propagation and counter semantics;
* checkpoint/restore: ``externalize()`` documents match between tiers
  and ``restore_platform(aot=True)`` resumes on Tier-3.
"""

from __future__ import annotations

import json
import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.domains.communication.cml import cml_metamodel
from repro.domains.communication.cvm import (
    build_middleware_model,
    default_context,
)
from repro.middleware.loader import DomainKnowledge, LoaderError, load_platform
from repro.middleware.snapshot import restore_platform
from repro.middleware.synthesis.aot import (
    AotError,
    build_program,
    load_program,
)
from repro.middleware.synthesis.interpreter import ChangeInterpreter, EntityRule
from repro.middleware.synthesis.scripts import script_to_json
from repro.modeling.aotgen import dsk_fingerprint, dsk_hash, generate_module_source
from repro.modeling.diff import diff_models
from repro.modeling.lts import LTS
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model, MObject
from repro.sim.network import CommService


# -- synthesis-layer property: Tier-2 vs Tier-3 scripts ---------------------

def _dsml() -> Metamodel:
    metamodel = Metamodel("aot-prop")
    root = metamodel.new_class("Root")
    root.reference("items", "Item", containment=True, many=True)
    item = metamodel.new_class("Item")
    item.attribute("name", "string")
    item.attribute("replicas", "int", default=1)
    item.attribute("tier", "string", default="standard")
    return metamodel.resolve()


def _rules() -> list[EntityRule]:
    item = LTS("item")
    item.add_transition(
        "initial", "add", "running",
        actions=(
            {
                "operation": "item.deploy",
                "args": {"kind": "item"},
                "args_expr": {
                    "id": "obj.id",
                    "label": "name + '/' + tier",
                    "capacity": "max(1, replicas * 2)",
                },
                "target_expr": "obj.id",
            },
            {
                "operation": "item.premium_boost",
                "when": "tier == 'premium'",
                "args_expr": {"id": "obj.id"},
            },
        ),
    )
    item.add_transition(
        "running", "set:replicas", "running",
        actions=(
            {
                "operation": "item.scale",
                "args_expr": {"id": "obj.id", "to": "new", "from": "old"},
            },
        ),
    )
    item.add_transition(
        "running", "set:tier", "running",
        actions=(
            {
                "operation": "item.retier",
                "foreach": "[new, old]",
                "args_expr": {"id": "obj.id", "tier": "item"},
            },
        ),
    )
    item.add_transition(
        "running", "remove", "initial",
        actions=({"operation": "item.undeploy", "args_expr": {"id": "obj.id"}},),
    )
    root = LTS("root")
    root.add_transition("initial", "add", "up")
    root.add_transition("up", "remove", "initial")
    return [EntityRule("Item", item), EntityRule("Root", root)]


def _build_model(metamodel: Metamodel, items: dict[str, tuple[int, str]]) -> Model:
    model = Model(metamodel, name="rev")
    root = MObject(metamodel.find_class("Root"), id="root")
    model.add_root(root)
    for name in sorted(items):
        replicas, tier = items[name]
        obj = MObject(
            metamodel.find_class("Item"), id=name,
            name=name, replicas=replicas, tier=tier,
        )
        root.items.append(obj)
    return model


def _aot_interpreter(metamodel: Metamodel) -> ChangeInterpreter:
    interpreter = ChangeInterpreter(compiled=True)
    for rule in _rules():
        interpreter.add_rule(rule)
    program = build_program(
        rules=interpreter._rules, actions=[], dsml=metamodel, domain="aot-prop"
    )
    assert not program.syn_skipped
    interpreter.install_aot(program)
    return interpreter


_item_names = st.sampled_from([f"i{k}" for k in range(5)])
_item_specs = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.sampled_from(["standard", "premium"]),
)
_revisions = st.lists(
    st.dictionaries(_item_names, _item_specs, max_size=5),
    min_size=1,
    max_size=4,
)


@settings(max_examples=50, deadline=None)
@given(_revisions)
def test_aot_scripts_byte_identical_to_compiled(revisions):
    """Random multi-revision editing sessions produce byte-identical
    control scripts whether the interpreter runs PR 3's compiled
    closures or the installed Tier-3 dispatch tables."""
    metamodel = _dsml()
    scripts: dict[bool, list[str]] = {}
    for aot in (True, False):
        if aot:
            interpreter = _aot_interpreter(metamodel)
        else:
            interpreter = ChangeInterpreter(compiled=True)
            for rule in _rules():
                interpreter.add_rule(rule)
        previous = Model(metamodel, name="empty")
        produced: list[str] = []
        for items in revisions:
            current = _build_model(metamodel, items)
            script = interpreter.interpret(
                diff_models(previous, current), script_name="cycle"
            )
            script.script_id = "script#norm"  # ids come from a global seq
            produced.append(script_to_json(script))
            previous = current
        scripts[aot] = produced
    assert scripts[True] == scripts[False]


# -- full-stack equality across the shipped domains -------------------------

def test_four_domain_op_logs_identical_under_aot():
    """Every shipped domain's two-phase session drives its service to
    the same op_log with and without the Tier-3 program installed."""
    from repro.bench.migrate import _fresh_session, _log_bytes, domain_cases

    for case in domain_cases():
        service2, _dsk, tier2 = _fresh_session(case)
        try:
            tier2.run_model(case.phase1())
            tier2.run_model(case.phase2())
        finally:
            tier2.stop()
        golden = _log_bytes(service2)
        assert golden, f"{case.name}: empty golden op_log"

        service3, _dsk, tier3 = _fresh_session(case)
        try:
            program = tier3.enable_aot()
            assert program.broker_calls, case.name
            tier3.run_model(case.phase1())
            tier3.run_model(case.phase2())
        finally:
            tier3.stop()
        assert _log_bytes(service3) == golden, case.name


# -- runtime-edit lifecycle --------------------------------------------------

def _comm_session():
    service = CommService("net0", op_cost=0.0)
    dsk = DomainKnowledge(dsml=cml_metamodel(), resources=[service])
    platform = load_platform(build_middleware_model(), dsk)
    platform.controller.context.update(default_context())
    return service, dsk, platform


def _conference(*, extended=False):
    from repro.domains.communication.cml import CmlBuilder

    builder = CmlBuilder("conference")
    alice = builder.person("alice", role="initiator")
    bob = builder.person("bob")
    builder.connection("c1", [alice, bob], media=["audio"])
    if extended:
        carol = builder.person("carol")
        builder.connection("c2", [alice, carol], media=["text"])
    return builder.build()


class TestRuntimeEditLifecycle:
    def test_rule_edit_falls_back_then_regenerates(self):
        service, _dsk, platform = _comm_session()
        try:
            platform.enable_aot()
            interpreter = platform.synthesis.interpreter
            platform.run_model(_conference())
            assert interpreter._aot is not None
            # Replace a live rule (same semantics back in): the
            # installed program must drop immediately...
            rule = next(iter(interpreter._rules.values()))
            interpreter.add_rule(rule, replace=True)
            assert interpreter._aot is None
            # ...the next cycle runs on Tier-2 and then regenerates.
            platform.run_model(_conference(extended=True))
            assert interpreter._aot is not None
        finally:
            platform.stop()

        golden_service, _dsk, reference = _comm_session()
        try:
            reference.run_model(_conference())
            reference.run_model(_conference(extended=True))
        finally:
            reference.stop()
        assert service.op_log == golden_service.op_log

    def test_dynamic_broker_action_drops_call_table(self):
        from repro.middleware.broker.actions import BrokerAction

        _service, _dsk, platform = _comm_session()
        try:
            platform.enable_aot()
            broker = platform.broker
            assert broker._aot_calls is not None
            broker.install_action(
                BrokerAction(
                    name="custom.noop",
                    pattern="custom.noop",
                    implementation=[{"set": "custom:flag", "expr": "1"}],
                )
            )
            # Edited call table: Tier-3 entries were generated from the
            # previous action set, so the whole table is dropped.
            assert broker._aot_calls is None
        finally:
            platform.stop()


# -- generation determinism and loader validation ----------------------------

class TestGenerationAndValidation:
    def _dsk_parts(self, platform):
        return dict(
            rules=platform.synthesis.interpreter._rules,
            actions=list(platform.broker.calls._actions),
            dsml=platform.dsml,
            domain=platform.domain,
        )

    def test_generation_is_deterministic(self):
        _service, _dsk, platform = _comm_session()
        try:
            parts = self._dsk_parts(platform)
            assert generate_module_source(**parts) == generate_module_source(
                **parts
            )
        finally:
            platform.stop()

    def test_dsk_hash_tracks_rule_set(self):
        _service, _dsk, platform = _comm_session()
        try:
            parts = self._dsk_parts(platform)
            baseline = dsk_hash(dsk_fingerprint(
                rules=parts["rules"], actions=parts["actions"],
                dsml=parts["dsml"],
            ))
            trimmed = dict(parts["rules"])
            trimmed.pop(next(iter(trimmed)))
            assert dsk_hash(dsk_fingerprint(
                rules=trimmed, actions=parts["actions"], dsml=parts["dsml"],
            )) != baseline
        finally:
            platform.stop()

    def test_loader_refuses_foreign_module(self):
        """A module generated from a different DSK shape is refused —
        the hash check, not trust, is what makes pregenerated modules
        shippable."""
        _service, _dsk, platform = _comm_session()
        try:
            parts = self._dsk_parts(platform)
            source = generate_module_source(**parts)
            trimmed = dict(parts["rules"])
            trimmed.pop(next(iter(trimmed)))
            with pytest.raises(AotError, match="hash mismatch"):
                load_program(
                    source, rules=trimmed, actions=parts["actions"],
                    dsml=parts["dsml"], domain=parts["domain"],
                )
        finally:
            platform.stop()

    def test_loader_refuses_wrong_abi(self):
        _service, _dsk, platform = _comm_session()
        try:
            parts = self._dsk_parts(platform)
            source = generate_module_source(**parts).replace(
                "ABI = 1", "ABI = 99", 1
            )
            with pytest.raises(AotError, match="ABI mismatch"):
                load_program(source, **parts)
        finally:
            platform.stop()

    def test_load_platform_aot_requires_start(self):
        service = CommService("net0", op_cost=0.0)
        dsk = DomainKnowledge(dsml=cml_metamodel(), resources=[service])
        with pytest.raises(LoaderError, match="aot"):
            load_platform(build_middleware_model(), dsk, start=False, aot=True)


# -- broker fast-path parity -------------------------------------------------

class TestBrokerFastPath:
    def test_call_api_results_and_counters_match_tier2(self):
        results = {}
        for aot in (True, False):
            service, _dsk, platform = _comm_session()
            try:
                if aot:
                    platform.enable_aot()
                broker = platform.broker
                session = broker.call_api("ncb.open_session", connection="c1")
                broker.call_api(
                    "ncb.add_party", connection="c1", party="alice"
                )
                broker.call_api("ncb.close_session", connection="c1")
                results[aot] = (
                    session,
                    broker.api_calls,
                    broker.metrics.counter_value("broker.call_api"),
                    list(service.op_log),
                )
            finally:
                platform.stop()
        assert results[True] == results[False]

    def test_errors_propagate_identically(self):
        errors = {}
        for aot in (True, False):
            _service, _dsk, platform = _comm_session()
            try:
                if aot:
                    platform.enable_aot()
                # close_session on a connection that was never opened:
                # the step expression dereferences missing state.
                with pytest.raises(Exception) as info:
                    platform.broker.call_api(
                        "ncb.close_session", connection="ghost"
                    )
                errors[aot] = type(info.value).__name__
            finally:
                platform.stop()
        assert errors[True] == errors[False]

    def test_transactional_calls_take_the_slow_path(self):
        """``_transactional`` needs the action table's snapshot and
        rollback bracket, which generated functions do not carry."""
        _service, _dsk, platform = _comm_session()
        try:
            platform.enable_aot()
            broker = platform.broker
            before = broker.calls.dispatched
            broker.call_api(
                "ncb.open_session", connection="c1", _transactional=True
            )
            assert broker.calls.dispatched == before + 1
            assert broker.state.get("session:c1")
        finally:
            platform.stop()


# -- checkpoint / restore ----------------------------------------------------

class TestCheckpointRestore:
    def test_externalized_documents_match_between_tiers(self):
        """The externalized state of a session (broker state + counters,
        controller context + counters) is tier-independent.  The full
        snapshot JSON is not compared byte-for-byte because model ids
        come from a process-global sequence."""
        docs = {}
        for aot in (True, False):
            _service, _dsk, platform = _comm_session()
            try:
                if aot:
                    platform.enable_aot()
                platform.run_model(_conference())
                text = json.dumps(
                    [
                        platform.broker.externalize(),
                        platform.controller.externalize(),
                    ],
                    sort_keys=True,
                )
                docs[aot] = re.sub(r"#\d+", "#N", text)
            finally:
                platform.stop()
        assert docs[True] == docs[False]

    def test_restore_resumes_on_tier3(self):
        service, dsk, platform = _comm_session()
        platform.enable_aot()
        platform.run_model(_conference())
        snapshot = platform.checkpoint()
        platform.stop()

        service.op_log.clear()
        restored = restore_platform(snapshot, dsk, aot=True)
        try:
            assert restored.synthesis.interpreter._aot is not None
            assert restored.broker._aot_calls
            restored.run_model(_conference(extended=True))
        finally:
            restored.stop()
        assert any("open_session" in line for line in service.op_log)
