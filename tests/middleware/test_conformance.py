"""Tests for the DSML <-> middleware conformance checker."""

import pytest

from repro.middleware.conformance import check_conformance
from repro.middleware.model import MiddlewareModelBuilder
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model


@pytest.fixture
def dsml() -> Metamodel:
    mm = Metamodel("checkml")
    widget = mm.new_class("Widget")
    widget.attribute("name", "string", required=True)
    widget.attribute("size", "int", default=1)
    widget.attribute("tags", "string", many=True)
    return mm.resolve()


def complete_model() -> Model:
    builder = MiddlewareModelBuilder("mw", "check")
    builder.ui_layer()
    builder.synthesis_layer().rule(
        "Widget",
        states={"live": False},
        transitions=[
            {"source": "initial", "label": "add", "target": "live",
             "commands": [{"operation": "w.make",
                           "args_expr": {"id": "obj.id"}}]},
            {"source": "live", "label": "set:size", "target": "live",
             "commands": [{"operation": "w.resize",
                           "args_expr": {"id": "object_id", "n": "new"}}]},
            {"source": "live", "label": "list:tags", "target": "live",
             "commands": []},
            {"source": "live", "label": "remove", "target": "initial",
             "commands": [{"operation": "w.drop",
                           "args_expr": {"id": "object_id"}}]},
        ],
    )
    controller = builder.controller_layer()
    controller.dsc("w")
    controller.dsc("w.make", parent="w")
    controller.action("a-make", "w.make", [{"api": "hw.make"}])
    controller.action("a-resize", "w.resize", [{"api": "hw.resize"}])
    controller.action("a-drop", "w.drop", [{"api": "hw.drop"}])
    controller.procedure(
        "p-make", "w.make",
        units={"main": [("BROKER", {"api": "hw.make"}), ("RETURN", {})]},
    )
    controller.map_operation("w.make", "w.make")
    broker = builder.broker_layer()
    broker.requires_resource("hw0")
    broker.action("b-make", "hw.make",
                  [{"resource": "hw0", "operation": "make"}])
    broker.action("b-resize", "hw.resize",
                  [{"resource": "hw0", "operation": "resize"}])
    broker.action("b-drop", "hw.drop",
                  [{"resource": "hw0", "operation": "drop"}])
    return builder.build()


class TestCleanModel:
    def test_complete_model_passes(self, dsml):
        report = check_conformance(complete_model(), dsml)
        assert report.ok, report.render()
        assert report.warnings == []

    def test_known_resources_satisfied(self, dsml):
        report = check_conformance(
            complete_model(), dsml, known_resources={"hw0"}
        )
        assert report.ok

    def test_render(self, dsml):
        assert "OK" in check_conformance(complete_model(), dsml).render()


class TestCoverage:
    def test_missing_rule_for_class(self, dsml):
        model = complete_model()
        synthesis = model.objects_by_class("SynthesisLayerDef")[0]
        synthesis.rules.clear()
        report = check_conformance(model, dsml)
        assert any(
            i.area == "coverage" and i.subject == "Widget"
            for i in report.errors
        )

    def test_missing_add_transition(self, dsml):
        model = complete_model()
        rule = model.objects_by_class("RuleDef")[0]
        for transition in list(rule.transitions):
            if transition.label == "add":
                rule.transitions.remove(transition)
        report = check_conformance(model, dsml)
        assert any("'add'" in i.message for i in report.errors)

    def test_missing_attribute_transition_is_warning(self, dsml):
        model = complete_model()
        rule = model.objects_by_class("RuleDef")[0]
        for transition in list(rule.transitions):
            if transition.label == "set:size":
                rule.transitions.remove(transition)
        report = check_conformance(model, dsml)
        assert report.ok  # warning, not error
        assert any(
            i.subject == "Widget.size" for i in report.warnings
        )

    def test_rule_for_unknown_class_is_warning(self, dsml):
        builder_model = complete_model()
        synthesis = builder_model.objects_by_class("SynthesisLayerDef")[0]
        ghost = builder_model.create("RuleDef", className="Ghost")
        synthesis.rules.append(ghost)
        report = check_conformance(builder_model, dsml)
        assert any(i.subject == "Ghost" for i in report.warnings)


class TestOperationClosure:
    def test_unserved_operation(self, dsml):
        model = complete_model()
        controller = model.objects_by_class("ControllerLayerDef")[0]
        for action in list(controller.actions):
            if action.name == "a-resize":
                controller.actions.remove(action)
        report = check_conformance(model, dsml)
        assert any(
            i.area == "operations" and i.subject == "w.resize"
            for i in report.errors
        )

    def test_case2_serves_without_action(self, dsml):
        # remove the make action: the procedure + classifier map serve it
        model = complete_model()
        controller = model.objects_by_class("ControllerLayerDef")[0]
        for action in list(controller.actions):
            if action.name == "a-make":
                controller.actions.remove(action)
        report = check_conformance(model, dsml)
        assert not any(i.subject == "w.make" for i in report.errors)

    def test_suppressed_controller_with_operations(self, dsml):
        model = complete_model()
        model.roots[0].controller.enabled = False
        model.roots[0].unset("controller")
        report = check_conformance(model, dsml)
        # advisory: operations must be served by a remote controller
        assert any(i.area == "operations" for i in report.warnings)
        assert not any(i.area == "operations" for i in report.errors)


class TestApiClosure:
    def test_unserved_api(self, dsml):
        model = complete_model()
        broker = model.objects_by_class("BrokerLayerDef")[0]
        for action in list(broker.actions):
            if action.name == "b-resize":
                broker.actions.remove(action)
        report = check_conformance(model, dsml)
        assert any(
            i.area == "apis" and i.subject == "hw.resize"
            for i in report.errors
        )

    def test_procedure_broker_instructions_counted(self, dsml):
        model = complete_model()
        broker = model.objects_by_class("BrokerLayerDef")[0]
        for action in list(broker.actions):
            if action.name == "b-make":
                broker.actions.remove(action)
        report = check_conformance(model, dsml)
        assert any(i.subject == "hw.make" for i in report.errors)

    def test_wildcard_pattern_serves(self, dsml):
        model = complete_model()
        broker = model.objects_by_class("BrokerLayerDef")[0]
        for action in list(broker.actions):
            broker.actions.remove(action)
        catch_all = model.create(
            "BrokerActionDef", name="catch", pattern="hw.*"
        )
        broker.actions.append(catch_all)
        report = check_conformance(model, dsml)
        assert not report.by_area("apis")


class TestResourceClosure:
    def test_undeclared_resource_warning(self, dsml):
        model = complete_model()
        broker = model.objects_by_class("BrokerLayerDef")[0]
        broker.requiredResources.clear()
        report = check_conformance(model, dsml)
        assert any(
            i.area == "resources" and i.subject == "hw0"
            for i in report.warnings
        )

    def test_unprovided_resource_error(self, dsml):
        report = check_conformance(
            complete_model(), dsml, known_resources={"other"}
        )
        assert any(
            i.area == "resources" and i.severity == "error"
            for i in report.issues
        )


class TestReferenceClosure:
    def test_dangling_dsc_parent(self, dsml):
        model = complete_model()
        controller = model.objects_by_class("ControllerLayerDef")[0]
        bad = model.create("DSCDef", name="stray", parent="nothing")
        controller.classifiers.append(bad)
        report = check_conformance(model, dsml)
        assert any(i.subject == "stray" for i in report.errors)

    def test_procedure_with_undefined_classifier(self, dsml):
        model = complete_model()
        controller = model.objects_by_class("ControllerLayerDef")[0]
        bad = model.create("ProcedureDef", name="lost", classifier="ghost")
        controller.procedures.append(bad)
        report = check_conformance(model, dsml)
        assert any(i.subject == "lost" for i in report.errors)

    def test_event_binding_to_missing_action(self, dsml):
        model = complete_model()
        broker = model.objects_by_class("BrokerLayerDef")[0]
        binding = model.create(
            "EventBindingDef", topicPattern="resource.*", action="ghost"
        )
        broker.eventBindings.append(binding)
        report = check_conformance(model, dsml)
        assert any("ghost" in i.message for i in report.errors)


class TestGuards:
    def test_wrong_model_type_rejected(self, dsml):
        with pytest.raises(ValueError):
            check_conformance(Model(dsml, name="x"), dsml)


class TestShippedDomains:
    """Every shipped domain's middleware model conforms to its DSML."""

    def test_cvm(self):
        from repro.domains.communication.cml import cml_metamodel
        from repro.domains.communication.cvm import build_middleware_model

        report = check_conformance(
            build_middleware_model(), cml_metamodel(),
            known_resources={"net0"},
        )
        assert report.ok, report.render()

    def test_mgridvm(self):
        from repro.domains.microgrid.mgridml import mgridml_metamodel
        from repro.domains.microgrid.mgridvm import build_middleware_model

        report = check_conformance(
            build_middleware_model(), mgridml_metamodel(),
            known_resources={"plant0"},
        )
        assert report.ok, report.render()

    def test_csvm(self):
        from repro.domains.crowdsensing.csml import csml_metamodel
        from repro.domains.crowdsensing.csvm import build_middleware_model

        report = check_conformance(
            build_middleware_model(), csml_metamodel(),
            known_resources={"fleet0"},
        )
        assert report.ok, report.render()

    def test_2svm_object_node(self):
        from repro.domains.smartspace.ssml import ssml_metamodel
        from repro.domains.smartspace.ssvm import build_object_node_model

        report = check_conformance(
            build_object_node_model(), ssml_metamodel(),
            known_resources={"space0"},
        )
        # the object node has no synthesis layer: rule coverage is
        # advisory there, and operations arrive as remote scripts
        assert report.ok, report.render()
